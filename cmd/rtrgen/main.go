// Command rtrgen emits task graphs and workload sequences for use with
// the other tools and for inspection.
//
//	rtrgen -graph jpeg -format json      # built-in benchmark as JSON
//	rtrgen -graph hough -format dot      # Graphviz rendering
//	rtrgen -random -tasks 8 -seed 3      # a random layered DAG
//	rtrgen -seq -apps 20 -seed 2011      # a workload sequence listing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dynlist"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func main() {
	var (
		name   = flag.String("graph", "", "built-in graph: jpeg, mpeg1, hough, fig2tg1, fig2tg2, fig3tg1, fig3tg2")
		format = flag.String("format", "json", "output format for graphs: json or dot")
		random = flag.Bool("random", false, "generate a random layered DAG instead")
		tasks  = flag.Int("tasks", 8, "random graph: number of tasks")
		width  = flag.Int("width", 3, "random graph: maximum layer width")
		seq    = flag.Bool("seq", false, "emit a random application sequence instead of a graph")
		apps   = flag.Int("apps", 20, "sequence length")
		seed   = flag.Int64("seed", 2011, "random seed")
	)
	flag.Parse()

	switch {
	case *seq:
		feed, err := dynlist.RandomSequence(workload.Multimedia(), *apps, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fatal(err)
		}
		for _, it := range feed.Remaining() {
			fmt.Printf("%4d %s\n", it.Instance, it.Graph.Name())
		}
	case *random:
		g, err := taskgraph.RandomLayered(fmt.Sprintf("random-%d", *seed), taskgraph.RandomConfig{
			Tasks:    *tasks,
			MaxWidth: *width,
			EdgeProb: 0.5,
			MinExec:  simtime.FromMs(1),
			MaxExec:  simtime.FromMs(20),
		}, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fatal(err)
		}
		emit(g, *format)
	default:
		g, err := builtin(*name)
		if err != nil {
			fatal(err)
		}
		emit(g, *format)
	}
}

func builtin(name string) (*taskgraph.Graph, error) {
	switch name {
	case "jpeg":
		return workload.JPEG(), nil
	case "mpeg1":
		return workload.MPEG1(), nil
	case "hough":
		return workload.Hough(), nil
	case "fig2tg1":
		return workload.Fig2TG1(), nil
	case "fig2tg2":
		return workload.Fig2TG2(), nil
	case "fig3tg1":
		return workload.Fig3TG1(), nil
	case "fig3tg2":
		return workload.Fig3TG2(), nil
	case "":
		return nil, fmt.Errorf("need -graph, -random or -seq")
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}

func emit(g *taskgraph.Graph, format string) {
	switch format {
	case "json":
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case "dot":
		fmt.Print(g.DOT())
	default:
		fatal(fmt.Errorf("unknown format %q (want json or dot)", format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrgen:", err)
	os.Exit(1)
}
