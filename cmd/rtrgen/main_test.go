package main

import "testing"

func TestBuiltin(t *testing.T) {
	known := []struct {
		name  string
		tasks int
	}{
		{"jpeg", 4}, {"mpeg1", 5}, {"hough", 6},
		{"fig2tg1", 3}, {"fig2tg2", 2}, {"fig3tg1", 3}, {"fig3tg2", 4},
	}
	for _, k := range known {
		g, err := builtin(k.name)
		if err != nil {
			t.Errorf("builtin(%q): %v", k.name, err)
			continue
		}
		if g.NumTasks() != k.tasks {
			t.Errorf("builtin(%q) has %d tasks, want %d", k.name, g.NumTasks(), k.tasks)
		}
	}
	if _, err := builtin(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := builtin("unknown"); err == nil {
		t.Error("unknown name accepted")
	}
}
