// Command rtrmob runs the design-time phase of the paper's technique: it
// computes the mobility table of a task graph (Fig. 6) for a given system
// configuration.
//
//	rtrmob -graph fig3tg2            # the paper's Fig. 7 example
//	rtrmob -graph hough -rus 6
//	rtrmob -json mygraph.json -rus 4 -latency 2.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/mobility"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func main() {
	var (
		name    = flag.String("graph", "", "built-in graph: jpeg, mpeg1, hough, fig2tg1, fig2tg2, fig3tg1, fig3tg2")
		jsonIn  = flag.String("json", "", "path of a JSON graph definition (see taskgraph schema)")
		rus     = flag.Int("rus", 4, "number of reconfigurable units")
		latency = flag.Float64("latency", 4, "reconfiguration latency in ms")
		dot     = flag.Bool("dot", false, "also print the graph in Graphviz dot syntax")
		asJSON  = flag.Bool("o-json", false, "emit the mobility table as JSON (the deployable design-time artefact)")
	)
	flag.Parse()

	g, err := loadGraph(*name, *jsonIn)
	if err != nil {
		fatal(err)
	}
	tab, err := mobility.Compute(g, *rus, simtime.FromMs(*latency))
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		data, err := json.MarshalIndent(tab, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Println(tab)
	fmt.Printf("critical path %v, width %d, %d schedules simulated\n",
		g.CriticalPath(), g.Width(), tab.Schedules)
	if *dot {
		fmt.Print(g.DOT())
	}
}

func loadGraph(name, jsonPath string) (*taskgraph.Graph, error) {
	if jsonPath != "" {
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			return nil, err
		}
		return taskgraph.FromJSON(data)
	}
	switch name {
	case "jpeg":
		return workload.JPEG(), nil
	case "mpeg1":
		return workload.MPEG1(), nil
	case "hough":
		return workload.Hough(), nil
	case "fig2tg1":
		return workload.Fig2TG1(), nil
	case "fig2tg2":
		return workload.Fig2TG2(), nil
	case "fig3tg1":
		return workload.Fig3TG1(), nil
	case "fig3tg2":
		return workload.Fig3TG2(), nil
	case "":
		return nil, fmt.Errorf("need -graph or -json")
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrmob:", err)
	os.Exit(1)
}
