// Command rtrmob runs the design-time phase of the paper's technique: it
// computes the mobility table of a task graph (Fig. 6) for a given system
// configuration.
//
//	rtrmob -graph fig3tg2            # the paper's Fig. 7 example
//	rtrmob -graph hough -rus 6
//	rtrmob -json mygraph.json -rus 4 -latency 2.5
//
// With -store the computed tables persist as design-time artifacts in a
// result store, where rtrsim and rtrrepro runs sharing that store load
// them instead of recomputing. -graph multimedia selects the whole
// multimedia template pool and -rus accepts a range, so one command
// pre-seeds every table a sweep will need:
//
//	rtrmob -graph multimedia -rus 4-10 -store /shared/store
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/mobility"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func main() {
	var (
		name     = flag.String("graph", "", "built-in graph: jpeg, mpeg1, hough, fig2tg1, fig2tg2, fig3tg1, fig3tg2, or multimedia (the whole pool; needs -store)")
		jsonIn   = flag.String("json", "", "path of a JSON graph definition (see taskgraph schema)")
		rus      = flag.String("rus", "4", "number of reconfigurable units; a range (\"4-10\") or list (\"4,6\") pre-seeds each (needs -store)")
		latency  = flag.Float64("latency", 4, "reconfiguration latency in ms")
		dot      = flag.Bool("dot", false, "also print the graph in Graphviz dot syntax")
		asJSON   = flag.Bool("o-json", false, "emit the mobility table as JSON (the deployable design-time artefact)")
		storeDir = flag.String("store", os.Getenv("RTR_STORE"), "result store locator (a directory, fs:DIR, mem:, or sqlite:FILE.db; default: $RTR_STORE): persist the computed tables as design-time artifacts for rtrsim/rtrrepro runs sharing the store")
		noStore  = flag.Bool("no-store", false, "disable the artifact store even when -store/$RTR_STORE is set")
	)
	flag.Parse()

	store, err := resultstore.OpenIfSet(*storeDir, *noStore)
	if err != nil {
		fatal(err)
	}
	mobility.ResetStats()
	if store != nil {
		artifact.Install(store)
	}

	graphs, err := loadGraphs(*name, *jsonIn)
	if err != nil {
		fatal(err)
	}
	units, err := sweep.ParseRUs(*rus)
	if err != nil {
		fatal(err)
	}
	if len(graphs) > 1 || len(units) > 1 {
		if store == nil {
			fatal(fmt.Errorf("multiple graphs or unit counts pre-seed a store; pass -store DIR (or run one graph at one -rus)"))
		}
		if *dot || *asJSON {
			fatal(fmt.Errorf("-dot/-o-json need a single graph at a single -rus"))
		}
		for _, u := range units {
			for _, g := range graphs {
				if _, err := mobility.Cached(g, u, simtime.FromMs(*latency)); err != nil {
					fatal(fmt.Errorf("%s rus=%d: %w", g.Name(), u, err))
				}
			}
		}
		reportAndFlush(store)
		return
	}

	g := graphs[0]
	tab, err := mobility.Cached(g, units[0], simtime.FromMs(*latency))
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		data, err := json.MarshalIndent(tab, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		reportAndFlush(store)
		return
	}
	fmt.Println(tab)
	fmt.Printf("critical path %v, width %d, %d schedules simulated\n",
		g.CriticalPath(), g.Width(), tab.Schedules)
	if *dot {
		fmt.Print(g.DOT())
	}
	reportAndFlush(store)
}

// reportAndFlush prints the design-time cache digest when a store is
// attached, so operators see what a pre-seed run computed vs served.
func reportAndFlush(store *resultstore.Store) {
	if store == nil {
		return
	}
	fmt.Fprintln(os.Stderr, store.SummaryLine())
	if line := mobility.DigestLine(); line != "" {
		fmt.Fprintln(os.Stderr, line)
	}
}

func loadGraphs(name, jsonPath string) ([]*taskgraph.Graph, error) {
	if jsonPath != "" {
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			return nil, err
		}
		g, err := taskgraph.FromJSON(data)
		if err != nil {
			return nil, err
		}
		return []*taskgraph.Graph{g}, nil
	}
	switch name {
	case "jpeg":
		return []*taskgraph.Graph{workload.JPEG()}, nil
	case "mpeg1":
		return []*taskgraph.Graph{workload.MPEG1()}, nil
	case "hough":
		return []*taskgraph.Graph{workload.Hough()}, nil
	case "fig2tg1":
		return []*taskgraph.Graph{workload.Fig2TG1()}, nil
	case "fig2tg2":
		return []*taskgraph.Graph{workload.Fig2TG2()}, nil
	case "fig3tg1":
		return []*taskgraph.Graph{workload.Fig3TG1()}, nil
	case "fig3tg2":
		return []*taskgraph.Graph{workload.Fig3TG2()}, nil
	case "multimedia":
		return workload.Multimedia(), nil
	case "":
		return nil, fmt.Errorf("need -graph or -json")
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrmob:", err)
	os.Exit(1)
}
