// Command rtrserved is the sweep control plane: an HTTP server hosting
// result-store + coordinator pairs ("campaigns") that CLI workers and
// merges reach through http(s) locators, with no shared filesystem.
//
//	rtrserved -listen :8080 -state sqlite:/var/lib/rtr -token s3cret
//
// Submit a campaign (the JSON spec mirrors the CLI flags; zero values
// mean the CLI defaults):
//
//	curl -s -X POST -H "Authorization: Bearer s3cret" \
//	  -d '{"api_version":1,"kind":"suite","only":["fig9a"]}' \
//	  http://host:8080/v1/campaigns
//	→ {"api_version":1,"id":"<ID>","path":"/c/<ID>"}
//
// Point any number of workers at it — the same self-healing pool
// commands as with directory locators, just with campaign URLs:
//
//	rtrrepro -only fig9a -store http://host:8080/c/ID \
//	         -coord http://host:8080/c/ID -coord-shards 8 -auth-token s3cret
//
// And read the report — either the SSE stream, rendered server-side
// row by row as the pool populates the store:
//
//	curl -N -H "Authorization: Bearer s3cret" http://host:8080/v1/campaigns/ID/rows
//
// or a CLI watch merge over the wire, byte-identical to a local run:
//
//	rtrrepro -only fig9a -store http://host:8080/c/ID \
//	         -coord http://host:8080/c/ID -merge-report -watch -auth-token s3cret
//
// GET /v1/campaigns/ID/status reports the pool snapshot with the
// drained/dead verdict; GET /healthz is the unauthenticated liveness
// probe. See ARCHITECTURE.md "Control plane" for the endpoint table
// and EXPERIMENTS.md "Running a sweep service" for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/serve"
)

func main() {
	var (
		listen = flag.String("listen", ":8080", "address to serve on (host:port)")
		state  = flag.String("state", "", "campaign state root locator: a directory (or fs:DIR) for per-campaign subdirectories, sqlite:DIR for per-campaign database files, or mem: (required)")
		token  = flag.String("token", os.Getenv("RTR_SERVE_TOKEN"),
			"bearer token required on every request except /healthz (default: $RTR_SERVE_TOKEN); empty disables auth")
		quiet = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	if *state == "" {
		fatal(errors.New("-state is required (fs:DIR, sqlite:DIR, or mem:)"))
	}
	logger := log.New(os.Stderr, "rtrserved: ", log.LstdFlags)
	reqLog := logger
	if *quiet {
		reqLog = nil
	}
	srv, err := serve.New(serve.Config{
		State: *state,
		Token: *token,
		Rows:  campaign.Render,
		Check: campaign.CheckSpec,
		Log:   reqLog,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	auth := "auth disabled"
	if *token != "" {
		auth = "bearer auth on"
	}
	logger.Printf("serving campaigns from %s on %s (%s)", srv.Location(), *listen, auth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		logger.Printf("%v: shutting down", s)
		// Graceful drain bounded by a deadline: in-flight store/coord
		// requests are quick, but an SSE rows stream follows the pool and
		// must be cut loose rather than waited for.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrserved:", err)
	os.Exit(1)
}
