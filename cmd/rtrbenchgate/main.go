// Command rtrbenchgate enforces the hot-loop performance budget in CI.
// It reads the current bench artifact (`go test -json` output with the
// BenchmarkEventLoop metrics), optionally a previous run's artifact,
// and fails when the budget is broken:
//
//	rtrbenchgate -current BENCH_ci.json -previous prev/BENCH_ci.json
//
// Rules: allocs/event must be exactly 0 (no baseline needed — the
// zero-allocation steady state is an invariant); ns/event must stay
// within -max-regress × the previous run (default 1.5, generous against
// runner noise). A missing previous artifact skips the trend rule with
// a note — the first run on a branch records the baseline instead of
// failing. The full check report prints either way.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchgate"
)

func main() {
	var (
		current  = flag.String("current", "BENCH_ci.json", "this run's `go test -json` benchmark output")
		previous = flag.String("previous", "", "previous run's artifact to diff ns/event against (missing file or empty flag: trend rule skipped)")
		maxRatio = flag.Float64("max-regress", 1.5, "ns/event budget as a ratio of the previous run")
	)
	flag.Parse()

	cur, err := parseFile(*current)
	if err != nil {
		fatal(err)
	}
	var prev map[string]benchgate.Metrics
	if *previous != "" {
		prev, err = parseFile(*previous)
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "rtrbenchgate: no previous artifact at %s — baseline bootstrap\n", *previous)
			prev, err = nil, nil
		}
		if err != nil {
			fatal(err)
		}
	}

	report, err := benchgate.Gate(cur, prev, benchgate.Options{MaxRatio: *maxRatio})
	fmt.Print(report)
	if err != nil {
		fatal(err)
	}
}

func parseFile(path string) (map[string]benchgate.Metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchgate.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrbenchgate:", err)
	os.Exit(1)
}
