// Command rtrrepro regenerates every table and figure of the paper's
// evaluation. With no flags it runs the complete suite with the paper's
// parameters (500 applications, 4–10 reconfigurable units, 4 ms latency).
//
//	rtrrepro                  # full suite
//	rtrrepro -only fig9a      # one experiment
//	rtrrepro -only fig2,fig3  # a subset
//	rtrrepro -apps 100 -seed 7 -rus 3-8
//	rtrrepro -store .rtr-store   # persist results; re-runs are warm
//
// With -store DIR (or RTR_STORE set), every grid experiment serves
// scenarios already on disk instead of re-simulating them and the reports
// stay byte-identical — CI runs the suite twice into one store and diffs
// the outputs. The hit/miss digest goes to stderr, never into a report.
//
// A sweep too large for one machine splits across hosts sharing a store:
//
//	host A:  rtrrepro -store /shared/store -shard 0/2   # no report; populates
//	host B:  rtrrepro -store /shared/store -shard 1/2
//	any:     rtrrepro -store /shared/store -merge-report > report.txt
//
// Shard i/N runs every grid experiment's scenarios whose spec index ≡ i
// (mod N) into the store and renders nothing (a per-shard digest —
// scenarios ran, skipped by other shards, store hits/misses — goes to
// stderr). -merge-report renders the full suite purely from the store:
// a grid scenario missing from it is an error, never a silent
// re-simulation, so the merged report is byte-identical to a
// single-process run — CI enforces exactly that. Experiments with
// nothing to persist (worked examples, timing tables, trace or
// per-task-latency sweeps) run live at merge time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated experiment ids (default: all); known: "+strings.Join(experiments.IDs(), ", "))
		seed     = flag.Int64("seed", 2011, "workload generation seed")
		apps     = flag.Int("apps", 500, "number of applications in the Fig. 9 workload")
		rus      = flag.String("rus", "4-10", "reconfigurable-unit sweep, e.g. \"4-10\" or \"3,4,6\"")
		latency  = flag.Float64("latency", 4, "reconfiguration latency in ms")
		csv      = flag.Bool("csv", false, "also emit CSV after each figure table")
		parallel = flag.Int("parallel", 0, "concurrently simulated scenarios per experiment (0 = one per CPU; reports are identical at any setting)")
		storeDir = flag.String("store", os.Getenv("RTR_STORE"), "persisted result store directory (default: $RTR_STORE); warm re-runs serve unchanged scenarios from disk")
		noStore  = flag.Bool("no-store", false, "disable the result store even when -store/$RTR_STORE is set")
		storeGC  = flag.Bool("store-gc", false, "garbage-collect the result store (stale-schema and corrupt entries) and exit")
		shardStr = flag.String("shard", "", "run only shard i/N of every grid experiment into -store (e.g. \"0/2\"); renders no report")
		merge    = flag.Bool("merge-report", false, "render the report purely from -store (populated by N -shard runs); a missing grid scenario is an error")
	)
	flag.Parse()

	store, err := resultstore.OpenIfSet(*storeDir, *noStore)
	if err != nil {
		fatal(err)
	}
	if *storeGC {
		line, err := resultstore.RunGC(store)
		if err != nil {
			fatal(err)
		}
		fmt.Println(line)
		return
	}

	units, err := sweep.ParseRUs(*rus)
	if err != nil {
		fatal(err)
	}
	opt := experiments.Options{
		Seed:          *seed,
		Apps:          *apps,
		RUs:           units,
		Latency:       simtime.FromMs(*latency),
		CSV:           *csv,
		Parallel:      *parallel,
		Store:         store,
		RequireStored: *merge,
	}

	selected, err := selectExperiments(*only)
	if err != nil {
		fatal(err)
	}

	if *shardStr != "" {
		shard, err := sweep.ParseShard(*shardStr)
		if err != nil {
			fatal(err)
		}
		if *merge {
			fatal(fmt.Errorf("-shard and -merge-report are mutually exclusive (populate first, merge after)"))
		}
		if store == nil {
			fatal(fmt.Errorf("-shard needs a result store (-store DIR or $RTR_STORE)"))
		}
		st, err := experiments.Populate(opt, selected, shard)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, shardDigest(shard, st))
		fmt.Fprintln(os.Stderr, store.SummaryLine())
		return
	}
	if *merge && store == nil {
		fatal(fmt.Errorf("-merge-report needs a result store (-store DIR or $RTR_STORE)"))
	}

	fmt.Printf("reproduction suite: seed %d, %d apps, RUs %v, latency %v\n",
		opt.Seed, opt.Apps, opt.RUs, opt.Latency)
	for _, e := range selected {
		if err := e.Run(opt, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
	}
	if store != nil {
		fmt.Fprintln(os.Stderr, store.SummaryLine())
	}
}

// shardDigest renders the per-shard stderr line operators read to verify
// a shard actually ran its slice: scenarios owned and executed vs
// skipped because other shards own them. Keep the format stable — the
// CI shard determinism gate greps it.
func shardDigest(shard sweep.Shard, st experiments.PopulateStats) string {
	return fmt.Sprintf("shard %s: ran %d of %d grid scenarios across %d grids (%d skipped by other shards)",
		shard, st.Ran, st.Scenarios, st.Grids, st.SkippedByShard)
}

// selectExperiments resolves the -only flag: empty means the full suite.
func selectExperiments(only string) ([]experiments.Experiment, error) {
	if only == "" {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q; known: %s", id, strings.Join(experiments.IDs(), ", "))
		}
		selected = append(selected, e)
	}
	return selected, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrrepro:", err)
	os.Exit(1)
}
