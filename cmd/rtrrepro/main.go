// Command rtrrepro regenerates every table and figure of the paper's
// evaluation. With no flags it runs the complete suite with the paper's
// parameters (500 applications, 4–10 reconfigurable units, 4 ms latency).
//
//	rtrrepro                  # full suite
//	rtrrepro -only fig9a      # one experiment
//	rtrrepro -only fig2,fig3  # a subset
//	rtrrepro -apps 100 -seed 7 -rus 3-8
//	rtrrepro -store .rtr-store   # persist results; re-runs are warm
//
// With -store DIR (or RTR_STORE set), every grid experiment serves
// scenarios already on disk instead of re-simulating them and the reports
// stay byte-identical — CI runs the suite twice into one store and diffs
// the outputs. The hit/miss digest goes to stderr, never into a report.
//
// A sweep too large for one machine splits across hosts sharing a store.
// The self-healing way is the coordinator — every host runs the same
// command and the pool divides the work by leasing shards; the merge can
// run anywhere, even before the workers, with -watch:
//
//	every host:  rtrrepro -store /shared/store -coord /shared/coord -coord-shards 16
//	any host:    rtrrepro -store /shared/store -coord /shared/coord -merge-report -watch > report.txt
//
// The store and coordinator need not be directories at all: with an
// rtrserved control plane the same commands run over the wire —
//
//	every host:  rtrrepro -store http://host:8080/c/ID -coord http://host:8080/c/ID
//	any host:    rtrrepro -store http://host:8080/c/ID -coord http://host:8080/c/ID -merge-report -watch
//
// (-auth-token/-http-timeout tune the wire client; see EXPERIMENTS.md
// "Running a sweep service").
//
// Each worker claims the next unleased shard, heartbeats while it
// populates the store, marks the shard done and claims another until
// none remain. A worker that dies mid-shard stops heartbeating; once its
// lease outlives -lease-ttl any surviving worker re-claims the shard and
// re-runs its slice (idempotent — the store dedupes by config hash, so
// only what the dead worker left unfinished re-simulates).
// -coord-workers N runs N claim loops inside one process;
// -coord-status prints the per-shard state without running anything.
//
// The watch merge renders each report row the moment the pool stores its
// scenarios, printing per-shard progress to stderr, and uses the same
// lease TTL for liveness: a pool whose newest heartbeat or completion is
// older than the TTL is declared dead and the merge errors instead of
// waiting forever. Without -watch, -merge-report next to -coord checks
// the pool has drained and refuses with its per-shard tally otherwise.
//
// Manual sharding remains for fixed CI matrices: -shard i/N runs every
// grid experiment's scenarios whose spec index ≡ i (mod N) into the
// store and renders nothing (a per-shard digest — scenarios ran, skipped
// by other shards, store hits/misses — goes to stderr). Either way,
// -merge-report renders the full suite purely from the store: a grid
// scenario missing from it is an error, never a silent re-simulation, so
// the merged report is byte-identical to a single-process run — CI
// enforces exactly that, including after SIGKILLing a coordinator worker
// mid-sweep. Experiments with nothing to persist (worked examples,
// timing tables, trace or per-task-latency sweeps) run live at merge
// time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/mobility"
	"repro/internal/profiling"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated experiment ids (default: all); known: "+strings.Join(experiments.IDs(), ", "))
		seed    = flag.Int64("seed", 2011, "workload generation seed")
		apps    = flag.Int("apps", 500, "number of applications in the Fig. 9 workload")
		rus     = flag.String("rus", "4-10", "reconfigurable-unit sweep, e.g. \"4-10\" or \"3,4,6\"")
		latency = flag.Float64("latency", 4, "reconfiguration latency in ms")
		csv     = flag.Bool("csv", false, "also emit CSV after each figure table")

		cf = cliflags.Register(flag.CommandLine)

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of this run to the file (inspect with go tool pprof; see EXPERIMENTS.md)")
		memProfile = flag.String("memprofile", "", "write a heap profile (live memory after GC) to the file at exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "rtrrepro:", err)
		}
	}()

	setup, err := cf.Resolve()
	if err != nil {
		fatal(err)
	}
	store := setup.Store
	// Design-time artifact tier: with a store attached, mobility tables
	// computed by this run persist next to the results, and tables any
	// previous run stored are loaded instead of recomputed. Counters
	// start from zero for this run's digest.
	mobility.ResetStats()
	if store != nil {
		artifact.Install(store)
	}
	if setup.StoreGC {
		line, err := resultstore.RunGC(store)
		if err != nil {
			fatal(err)
		}
		fmt.Println(line)
		return
	}
	if setup.CoordStatus {
		report, err := setup.StatusReport()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		return
	}

	units, err := sweep.ParseRUs(*rus)
	if err != nil {
		fatal(err)
	}
	opt := experiments.Options{
		Seed:          *seed,
		Apps:          *apps,
		RUs:           units,
		Latency:       simtime.FromMs(*latency),
		CSV:           *csv,
		Parallel:      setup.Parallel,
		Retries:       setup.Retries,
		Store:         store,
		RequireStored: setup.Merge,
	}

	selected, err := selectExperiments(*only)
	if err != nil {
		fatal(err)
	}

	var poolWatch *coord.PoolWatch
	out := io.Writer(os.Stdout)
	if setup.Coord != nil {
		fingerprint := coordFingerprint(opt, selected)
		cfg := setup.Coord.Config(fingerprint)
		cks := coord.NewCheckpointStore(setup.Coord.Backend)
		if !setup.Merge {
			c, err := coord.Open(cfg)
			if errors.Is(err, coord.ErrUninitialised) {
				fatal(fmt.Errorf("%w (pass -coord-shards N to initialise the pool)", err))
			}
			if err != nil {
				fatal(err)
			}
			// Checkpointed populate: a re-leased shard resumes past the
			// spec indices a dead worker's attempt already stored.
			opt.Checkpoints, opt.Fingerprint = cks, fingerprint
			stats, err := c.RunWorkers(setup.Coord.Workers, func(r coord.ShardRun) error {
				sh := sweep.Shard{Index: r.Shard, Count: r.Count}
				st, err := experiments.Populate(opt, selected, sh)
				if err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "coord worker %s: %s (attempt %d)\n", c.Owner(), shardDigest(sh, st), r.Attempt)
				return nil
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, stats.Summary(c.Shards()))
			fmt.Fprintln(os.Stderr, store.SummaryLine())
			printMobilityDigest()
			return
		}
		// Coordinator-aware merge: consult the pool before rendering from
		// the store. Without -watch a pool that has not drained is an
		// immediate, pointed error; with -watch the suite renders while
		// the pool populates, each row the moment its scenarios land, and
		// a pool dead past its lease TTL fails the merge instead of
		// hanging it.
		_, pw, poll, err := coord.MergeGate(cfg, setup.Watch, os.Stderr)
		if err != nil {
			fatal(err)
		}
		if pw != nil {
			poolWatch = pw
			defer poolWatch.Stop()
			opt.StoreWait = &sweep.StoreWait{Poll: poll, Done: poolWatch.Done}
			// Checkpointed render: a killed watch merge left the byte
			// offset it had printed; the resumed render re-renders from
			// the store (pure serve hits) and suppresses exactly that
			// prefix, so partial-output + resumed-output reassemble the
			// plain report byte for byte. A completed merge resets the
			// offset so a deliberate re-render prints in full.
			if resume := campaign.LoadMergeOffset(cks, fingerprint); resume > 0 {
				fmt.Fprintf(os.Stderr, "merge checkpoint: resuming at byte offset %d\n", resume)
				out = &campaign.CheckpointedWriter{W: os.Stdout, Resume: resume,
					Save: func(total int64) { campaign.SaveMergeOffset(cks, fingerprint, total) }}
			} else {
				out = &campaign.CheckpointedWriter{W: os.Stdout,
					Save: func(total int64) { campaign.SaveMergeOffset(cks, fingerprint, total) }}
			}
			defer campaign.SaveMergeOffset(cks, fingerprint, 0)
		}
	}
	if setup.HasShard {
		st, err := experiments.Populate(opt, selected, setup.Shard)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, shardDigest(setup.Shard, st))
		fmt.Fprintln(os.Stderr, store.SummaryLine())
		printMobilityDigest()
		return
	}

	if err := campaign.RenderSuite(opt, selected, out); err != nil {
		fatal(err)
	}
	if poolWatch != nil {
		// -watch blocks until the pool drains, not merely until the
		// report is complete: the last done records can trail the store
		// writes the report consumed, and a worker that dies right at the
		// end should still be reported.
		if _, err := poolWatch.Wait(); err != nil {
			fatal(err)
		}
	}
	if store != nil {
		fmt.Fprintln(os.Stderr, store.SummaryLine())
	}
	printMobilityDigest()
}

// printMobilityDigest emits the design-time cache digest to stderr when
// this run touched the mobility cache at all. Keep the format stable —
// the CI artifact-reuse gate greps it.
func printMobilityDigest() {
	if line := mobility.DigestLine(); line != "" {
		fmt.Fprintln(os.Stderr, line)
	}
}

// shardDigest renders the per-shard stderr line operators read to verify
// a shard actually ran its slice: scenarios owned and executed vs
// skipped because other shards own them. Keep the format stable — the
// CI shard determinism gate greps it.
func shardDigest(shard sweep.Shard, st experiments.PopulateStats) string {
	return fmt.Sprintf("shard %s: ran %d of %d grid scenarios across %d grids (%d skipped by other shards)",
		shard, st.Ran, st.Scenarios, st.Grids, st.SkippedByShard)
}

// coordFingerprint identifies the sweep a coordinator pool is running —
// the parameters that determine the store entries the shards populate.
// Hosts launched with different flags against one pool would tile
// different grids into one store and fail only at merge time; the
// fingerprint turns that operator error into an immediate refusal.
func coordFingerprint(opt experiments.Options, selected []experiments.Experiment) string {
	h := resultstore.NewHash()
	h.String("cli", "rtrrepro")
	h.Int("seed", opt.Seed)
	h.Int("apps", int64(opt.Apps))
	for _, r := range opt.RUs {
		h.Int("ru", int64(r))
	}
	h.Int("latency", int64(opt.Latency))
	for _, e := range selected {
		h.String("experiment", e.ID)
	}
	return h.Sum()
}

// selectExperiments resolves the -only flag: empty means the full suite.
func selectExperiments(only string) ([]experiments.Experiment, error) {
	if only == "" {
		return campaign.SelectExperiments(nil)
	}
	return campaign.SelectExperiments(strings.Split(only, ","))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrrepro:", err)
	os.Exit(1)
}
