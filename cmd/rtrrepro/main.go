// Command rtrrepro regenerates every table and figure of the paper's
// evaluation. With no flags it runs the complete suite with the paper's
// parameters (500 applications, 4–10 reconfigurable units, 4 ms latency).
//
//	rtrrepro                  # full suite
//	rtrrepro -only fig9a      # one experiment
//	rtrrepro -only fig2,fig3  # a subset
//	rtrrepro -apps 100 -seed 7 -rus 3-8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/simtime"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated experiment ids (default: all); known: "+strings.Join(experiments.IDs(), ", "))
		seed    = flag.Int64("seed", 2011, "workload generation seed")
		apps    = flag.Int("apps", 500, "number of applications in the Fig. 9 workload")
		rus     = flag.String("rus", "4-10", "reconfigurable-unit sweep, e.g. \"4-10\" or \"3,4,6\"")
		latency = flag.Float64("latency", 4, "reconfiguration latency in ms")
		csv     = flag.Bool("csv", false, "also emit CSV after each figure table")
	)
	flag.Parse()

	sweep, err := parseRUs(*rus)
	if err != nil {
		fatal(err)
	}
	opt := experiments.Options{
		Seed:    *seed,
		Apps:    *apps,
		RUs:     sweep,
		Latency: simtime.FromMs(*latency),
		CSV:     *csv,
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q; known: %s", id, strings.Join(experiments.IDs(), ", ")))
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("reproduction suite: seed %d, %d apps, RUs %v, latency %v\n",
		opt.Seed, opt.Apps, opt.RUs, opt.Latency)
	for _, e := range selected {
		if err := e.Run(opt, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
	}
}

// parseRUs accepts "4-10" ranges and "3,4,6" lists.
func parseRUs(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if from, to, ok := strings.Cut(s, "-"); ok {
		lo, err1 := strconv.Atoi(strings.TrimSpace(from))
		hi, err2 := strconv.Atoi(strings.TrimSpace(to))
		if err1 != nil || err2 != nil || lo < 1 || hi < lo {
			return nil, fmt.Errorf("bad RU range %q", s)
		}
		var out []int
		for r := lo; r <= hi; r++ {
			out = append(out, r)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 1 {
			return nil, fmt.Errorf("bad RU count %q", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty RU list %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrrepro:", err)
	os.Exit(1)
}
