// Command rtrrepro regenerates every table and figure of the paper's
// evaluation. With no flags it runs the complete suite with the paper's
// parameters (500 applications, 4–10 reconfigurable units, 4 ms latency).
//
//	rtrrepro                  # full suite
//	rtrrepro -only fig9a      # one experiment
//	rtrrepro -only fig2,fig3  # a subset
//	rtrrepro -apps 100 -seed 7 -rus 3-8
//	rtrrepro -store .rtr-store   # persist results; re-runs are warm
//
// With -store DIR (or RTR_STORE set), every grid experiment serves
// scenarios already on disk instead of re-simulating them and the reports
// stay byte-identical — CI runs the suite twice into one store and diffs
// the outputs. The hit/miss digest goes to stderr, never into a report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated experiment ids (default: all); known: "+strings.Join(experiments.IDs(), ", "))
		seed     = flag.Int64("seed", 2011, "workload generation seed")
		apps     = flag.Int("apps", 500, "number of applications in the Fig. 9 workload")
		rus      = flag.String("rus", "4-10", "reconfigurable-unit sweep, e.g. \"4-10\" or \"3,4,6\"")
		latency  = flag.Float64("latency", 4, "reconfiguration latency in ms")
		csv      = flag.Bool("csv", false, "also emit CSV after each figure table")
		parallel = flag.Int("parallel", 0, "concurrently simulated scenarios per experiment (0 = one per CPU; reports are identical at any setting)")
		storeDir = flag.String("store", os.Getenv("RTR_STORE"), "persisted result store directory (default: $RTR_STORE); warm re-runs serve unchanged scenarios from disk")
		noStore  = flag.Bool("no-store", false, "disable the result store even when -store/$RTR_STORE is set")
		storeGC  = flag.Bool("store-gc", false, "garbage-collect the result store (stale-schema and corrupt entries) and exit")
	)
	flag.Parse()

	store, err := resultstore.OpenIfSet(*storeDir, *noStore)
	if err != nil {
		fatal(err)
	}
	if *storeGC {
		line, err := resultstore.RunGC(store)
		if err != nil {
			fatal(err)
		}
		fmt.Println(line)
		return
	}

	units, err := sweep.ParseRUs(*rus)
	if err != nil {
		fatal(err)
	}
	opt := experiments.Options{
		Seed:     *seed,
		Apps:     *apps,
		RUs:      units,
		Latency:  simtime.FromMs(*latency),
		CSV:      *csv,
		Parallel: *parallel,
		Store:    store,
	}

	selected, err := selectExperiments(*only)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("reproduction suite: seed %d, %d apps, RUs %v, latency %v\n",
		opt.Seed, opt.Apps, opt.RUs, opt.Latency)
	for _, e := range selected {
		if err := e.Run(opt, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
	}
	if store != nil {
		fmt.Fprintln(os.Stderr, store.SummaryLine())
	}
}

// selectExperiments resolves the -only flag: empty means the full suite.
func selectExperiments(only string) ([]experiments.Experiment, error) {
	if only == "" {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q; known: %s", id, strings.Join(experiments.IDs(), ", "))
		}
		selected = append(selected, e)
	}
	return selected, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrrepro:", err)
	os.Exit(1)
}
