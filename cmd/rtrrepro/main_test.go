package main

import "testing"

func TestParseRUs(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"4-10", []int{4, 5, 6, 7, 8, 9, 10}, false},
		{"3-3", []int{3}, false},
		{" 4 - 6 ", []int{4, 5, 6}, false},
		{"3,5,9", []int{3, 5, 9}, false},
		{"7", []int{7}, false},
		{"10-4", nil, true},
		{"0-3", nil, true},
		{"a-b", nil, true},
		{"4,x", nil, true},
		{"", nil, true},
		{"-2", nil, true},
	}
	for _, tt := range cases {
		got, err := parseRUs(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseRUs(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseRUs(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("parseRUs(%q) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}
