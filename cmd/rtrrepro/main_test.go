package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments.All()) {
		t.Errorf("empty -only selected %d experiments, want the full suite (%d)",
			len(all), len(experiments.All()))
	}
	some, err := selectExperiments(" fig2 ,fig9a")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].ID != "fig2" || some[1].ID != "fig9a" {
		t.Errorf("selected %v", some)
	}
	if _, err := selectExperiments("fig2,nope"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}
