package main

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments.All()) {
		t.Errorf("empty -only selected %d experiments, want the full suite (%d)",
			len(all), len(experiments.All()))
	}
	some, err := selectExperiments(" fig2 ,fig9a")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].ID != "fig2" || some[1].ID != "fig9a" {
		t.Errorf("selected %v", some)
	}
	if _, err := selectExperiments("fig2,nope"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

// TestCoordFingerprintSensitivity: every sweep parameter a coordinator
// pool depends on must move the fingerprint, and identical launches must
// agree — that is what lets every host run the same command while a
// mis-flagged host is refused at Open.
func TestCoordFingerprintSensitivity(t *testing.T) {
	base := experiments.Options{
		Seed: 2011, Apps: 120, RUs: []int{4, 5, 6}, Latency: simtime.FromMs(4),
	}
	sel := func(ids ...string) []experiments.Experiment {
		var out []experiments.Experiment
		for _, id := range ids {
			e, ok := experiments.ByID(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			out = append(out, e)
		}
		return out
	}
	exps := sel("fig9a", "fig9b")
	fp := coordFingerprint(base, exps)
	if fp != coordFingerprint(base, sel("fig9a", "fig9b")) {
		t.Error("fingerprint unstable across identical launches")
	}
	mutations := map[string]func() string{
		"seed":        func() string { o := base; o.Seed = 7; return coordFingerprint(o, exps) },
		"apps":        func() string { o := base; o.Apps = 121; return coordFingerprint(o, exps) },
		"rus":         func() string { o := base; o.RUs = []int{4, 5}; return coordFingerprint(o, exps) },
		"latency":     func() string { o := base; o.Latency = simtime.FromMs(8); return coordFingerprint(o, exps) },
		"experiments": func() string { return coordFingerprint(base, sel("fig9a")) },
	}
	for name, mutate := range mutations {
		if mutate() == fp {
			t.Errorf("changing %s left the coordinator fingerprint unchanged", name)
		}
	}
}

// TestShardDigestFormat pins the stderr line the CI gates grep.
func TestShardDigestFormat(t *testing.T) {
	got := shardDigest(sweep.Shard{Index: 2, Count: 6}, experiments.PopulateStats{
		Grids: 4, Scenarios: 82, Ran: 15, SkippedByShard: 67,
	})
	want := "shard 2/6: ran 15 of 82 grid scenarios across 4 grids (67 skipped by other shards)"
	if got != want {
		t.Errorf("shard digest\n got %q\nwant %q", got, want)
	}
}
