// Command rtrsim simulates a reconfigurable multitasking system executing
// a workload under a chosen replacement policy and reports the paper's
// metrics (reuse rate, reconfiguration overhead, remaining-overhead
// percentage), optionally with a schedule view.
//
//	rtrsim -workload fig2 -policy lfd -gantt
//	rtrsim -workload multimedia -apps 200 -policy locallfd:2 -skip -rus 4
//	rtrsim -workload fig3 -policy locallfd:1 -skip -gantt
//
// Passing several policies and/or several unit counts turns the run into
// a sweep executed on the parallel scenario executor (one worker per CPU
// unless -parallel says otherwise), reported as a comparison table:
//
//	rtrsim -policy lru,locallfd:1,lfd -rus 4-10 -parallel 8
//
// With -store DIR (or RTR_STORE set), scenario results are persisted
// keyed by canonical config hash and re-runs with overlapping grids are
// served from disk; the hit/miss digest goes to stderr so reports stay
// byte-identical. -store-gc reclaims entries written under an older
// schema version; -no-store disables the store even when RTR_STORE is
// set. Trace-producing runs (-gantt/-svg/-trace) bypass the store.
//
// A grid too large for one machine splits across hosts sharing a store:
//
//	host A:  rtrsim -policy lru,lfd -rus 4-10 -store /shared -shard 0/2
//	host B:  rtrsim -policy lru,lfd -rus 4-10 -store /shared -shard 1/2
//	any:     rtrsim -policy lru,lfd -rus 4-10 -store /shared -merge-report
//
// -shard i/N simulates only the scenarios whose spec index ≡ i (mod N)
// into the store and prints no table (the per-shard digest — scenarios
// ran, skipped by other shards, store hits/misses — goes to stderr);
// -merge-report renders the full comparison table purely from the store,
// failing on any scenario a shard never populated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dynlist"
	"repro/internal/metrics"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "multimedia", "workload: fig2, fig3, or multimedia")
		apps     = flag.Int("apps", 500, "sequence length for the multimedia workload")
		seed     = flag.Int64("seed", 2011, "sequence seed for the multimedia workload")
		pol      = flag.String("policy", "locallfd:1", "replacement policy (lru, mru, fifo, random[:seed], lfd, locallfd:<w>); a comma list sweeps them")
		rus      = flag.String("rus", "4", "number of reconfigurable units; a range (\"4-10\") or list (\"4,6\") sweeps them")
		latency  = flag.Float64("latency", 4, "reconfiguration latency in ms")
		skip     = flag.Bool("skip", false, "enable skip events (hybrid design-time/run-time technique)")
		prefetch = flag.Bool("prefetch", false, "enable the cross-graph prefetch extension")
		parallel = flag.Int("parallel", 0, "concurrently simulated sweep scenarios (0 = one per CPU)")
		gantt    = flag.Bool("gantt", false, "print the schedule as an ASCII Gantt chart (single run only)")
		tick     = flag.Float64("tick", 0, "Gantt: ms per column (0 = auto)")
		svgOut   = flag.String("svg", "", "write the schedule as SVG to this file (single run only)")
		traceOut = flag.String("trace", "", "write the execution trace as JSON to this file (single run only)")
		storeDir = flag.String("store", os.Getenv("RTR_STORE"), "persisted result store directory (default: $RTR_STORE); re-runs serve unchanged scenarios from disk")
		noStore  = flag.Bool("no-store", false, "disable the result store even when -store/$RTR_STORE is set")
		storeGC  = flag.Bool("store-gc", false, "garbage-collect the result store (stale-schema and corrupt entries) and exit")
		shardStr = flag.String("shard", "", "simulate only shard i/N of the sweep grid into -store (e.g. \"0/2\"); prints no table")
		merge    = flag.Bool("merge-report", false, "render the sweep table purely from -store (populated by N -shard runs); a missing scenario is an error")
	)
	flag.Parse()

	store, err := resultstore.OpenIfSet(*storeDir, *noStore)
	if err != nil {
		fatal(err)
	}
	if *storeGC {
		line, err := resultstore.RunGC(store)
		if err != nil {
			fatal(err)
		}
		fmt.Println(line)
		return
	}

	units, err := sweep.ParseRUs(*rus)
	if err != nil {
		fatal(err)
	}
	policies, err := sweep.ParsePolicies(*pol, *skip)
	if err != nil {
		fatal(err)
	}
	seq, err := buildWorkload(*wl, *apps, *seed)
	if err != nil {
		fatal(err)
	}

	var shard sweep.Shard
	if *shardStr != "" {
		shard, err = sweep.ParseShard(*shardStr)
		if err != nil {
			fatal(err)
		}
		if *merge {
			fatal(fmt.Errorf("-shard and -merge-report are mutually exclusive (populate first, merge after)"))
		}
		if store == nil {
			fatal(fmt.Errorf("-shard needs a result store (-store DIR or $RTR_STORE)"))
		}
	}
	if *merge && store == nil {
		fatal(fmt.Errorf("-merge-report needs a result store (-store DIR or $RTR_STORE)"))
	}
	sharded := *shardStr != "" || *merge

	if len(units) == 1 && len(policies) == 1 && !sharded {
		runSingle(*wl, seq, singleOptions{
			spec: policies[0], rus: units[0], latency: simtime.FromMs(*latency),
			skip: *skip, prefetch: *prefetch,
			gantt: *gantt, tick: *tick, svgOut: *svgOut, traceOut: *traceOut,
		}, store)
	} else {
		if *gantt || *svgOut != "" || *traceOut != "" {
			if sharded {
				fatal(fmt.Errorf("-gantt/-svg/-trace need a single live scenario, not a sharded sweep"))
			}
			fatal(fmt.Errorf("-gantt/-svg/-trace need a single scenario; got %d policies × %d unit counts",
				len(policies), len(units)))
		}
		runSweep(*wl, seq, sweepOptions{
			units: units, policies: policies, latency: simtime.FromMs(*latency),
			prefetch: *prefetch, parallel: *parallel,
			shard: shard, populate: *shardStr != "", merge: *merge,
		}, store)
	}
	if store != nil {
		fmt.Fprintln(os.Stderr, store.SummaryLine())
	}
}

type singleOptions struct {
	spec           sweep.PolicySpec
	rus            int
	latency        simtime.Time
	skip, prefetch bool
	gantt          bool
	tick           float64
	svgOut         string
	traceOut       string
}

// runSingle is the classic one-scenario path with the full metric report
// and the optional schedule views. With a store attached (and no schedule
// view requested, since traces are not serialized) the scenario runs
// through the store-backed sweep executor instead, so repeated single
// runs are served from disk too.
func runSingle(wl string, seq []*taskgraph.Graph, o singleOptions, store *resultstore.Store) {
	needTrace := o.gantt || o.svgOut != "" || o.traceOut != ""
	var res *core.Result
	if store != nil && !needTrace {
		ps := o.spec
		ps.CrossGraphPrefetch = o.prefetch
		rs, err := sweep.Executor{Store: store}.Run(sweep.Spec{
			Workloads: []sweep.Workload{{Seq: seq}},
			RUs:       []int{o.rus},
			Latencies: []simtime.Time{o.latency},
			Policies:  []sweep.PolicySpec{ps},
		})
		if err != nil {
			fatal(err)
		}
		r := rs.Results[0]
		res = &core.Result{Run: r.Run, Ideal: r.Ideal, Summary: r.Summary}
	} else {
		pol, err := o.spec.New()
		if err != nil {
			fatal(err)
		}
		r, err := core.Evaluate(core.Config{
			RUs:                o.rus,
			Latency:            o.latency,
			Policy:             pol,
			SkipEvents:         o.skip,
			CrossGraphPrefetch: o.prefetch,
			RecordTrace:        needTrace,
		}, seq...)
		if err != nil {
			fatal(err)
		}
		res = r
	}

	s := res.Summary
	fmt.Printf("workload        %s (%d applications, %d task executions)\n", wl, len(seq), s.Executed)
	fmt.Printf("system          %d RUs, latency %v\n", s.RUs, s.Latency)
	// The spec's display name already carries the skip suffix, and both
	// execution paths (core and store-backed sweep) report the same run,
	// so the label is path-independent.
	fmt.Printf("policy          %s\n", o.spec.Name)
	fmt.Printf("reuse           %d/%d = %.2f%%\n", s.Reused, s.Executed, s.ReuseRate())
	fmt.Printf("makespan        %v (ideal %v)\n", s.Makespan, s.IdealMakespan)
	fmt.Printf("overhead        %v (%.2f%% of the original %v)\n",
		s.Overhead(), s.RemainingOverheadPct(), s.OriginalOverhead())
	fmt.Printf("loads           %d (skips taken: %d, preloads: %d)\n",
		s.Loads, res.Run.Skips, res.Run.Preloads)
	if d, err := metrics.Delays(res.Run, res.Ideal); err == nil && d.Count > 0 {
		fmt.Printf("per-app delay   mean %v, p50 %v, p95 %v, max %v\n", d.Mean, d.P50, d.P95, d.Max)
	}
	if o.gantt {
		fmt.Println()
		fmt.Print(res.Run.Trace.Gantt(trace.GanttOptions{TickMs: o.tick}))
	}
	if o.svgOut != "" {
		if err := os.WriteFile(o.svgOut, []byte(res.Run.Trace.SVG()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule SVG    %s\n", o.svgOut)
	}
	if o.traceOut != "" {
		data, err := json.MarshalIndent(res.Run.Trace, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(o.traceOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("trace JSON      %s\n", o.traceOut)
	}
}

type sweepOptions struct {
	units    []int
	policies []sweep.PolicySpec
	latency  simtime.Time
	prefetch bool
	parallel int
	// shard/populate: run only the shard's slice into the store, no
	// table; merge: render the table purely from the store.
	shard    sweep.Shard
	populate bool
	merge    bool
}

// runSweep executes the policies × unit-counts grid on the streaming
// executor and prints one comparison row per scenario, in spec order.
// Results stream through a SummaryCollector — the sweep never holds more
// than O(workers) raw runs however many scenarios the flags expand to.
func runSweep(wl string, seq []*taskgraph.Graph, o sweepOptions, store *resultstore.Store) {
	if o.prefetch {
		for i := range o.policies {
			o.policies[i].CrossGraphPrefetch = true
		}
	}
	spec := sweep.Spec{
		Workloads: []sweep.Workload{{Seq: seq}},
		RUs:       o.units,
		Latencies: []simtime.Time{o.latency},
		Policies:  o.policies,
	}
	if o.populate {
		spec.Shard = o.shard
		if err := (sweep.Executor{Workers: o.parallel, Store: store}).Collect(spec, sweep.Discard); err != nil {
			fatal(err)
		}
		n := spec.Size()
		fmt.Fprintf(os.Stderr, "shard %s: ran %d of %d scenarios (%d skipped by other shards)\n",
			o.shard, o.shard.SizeOf(n), n, n-o.shard.SizeOf(n))
		return
	}
	ss, err := sweep.Executor{Workers: o.parallel, Store: store, RequireStored: o.merge}.RunSummaries(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload        %s (%d applications), latency %v, %d scenarios\n",
		wl, len(seq), o.latency, spec.Size())
	fmt.Printf("%-30s %4s %10s %14s %12s %8s %8s\n",
		"policy", "RUs", "reuse %", "makespan", "remaining %", "loads", "skips")
	for ri, r := range o.units {
		for pi := range o.policies {
			row := ss.At(0, ri, 0, pi)
			s := row.Summary
			fmt.Printf("%-30s %4d %10.2f %14v %12.2f %8d %8d\n",
				s.PolicyName, r, s.ReuseRate(), s.Makespan, s.RemainingOverheadPct(),
				s.Loads, row.Counters.Skips)
		}
	}
}

func buildWorkload(name string, apps int, seed int64) ([]*taskgraph.Graph, error) {
	switch name {
	case "fig2":
		return workload.Fig2Sequence(), nil
	case "fig3":
		return workload.Fig3Sequence(), nil
	case "multimedia":
		feed, err := dynlist.RandomSequence(workload.Multimedia(), apps, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		items := feed.Remaining()
		seq := make([]*taskgraph.Graph, len(items))
		for i, it := range items {
			seq[i] = it.Graph
		}
		return seq, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want fig2, fig3 or multimedia)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrsim:", err)
	os.Exit(1)
}
