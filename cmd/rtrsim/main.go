// Command rtrsim simulates a reconfigurable multitasking system executing
// a workload under a chosen replacement policy and reports the paper's
// metrics (reuse rate, reconfiguration overhead, remaining-overhead
// percentage), optionally with a schedule view.
//
//	rtrsim -workload fig2 -policy lfd -gantt
//	rtrsim -workload multimedia -apps 200 -policy locallfd:2 -skip -rus 4
//	rtrsim -workload fig3 -policy locallfd:1 -skip -gantt
//
// Passing several policies and/or several unit counts turns the run into
// a sweep executed on the parallel scenario executor (one worker per CPU
// unless -parallel says otherwise), reported as a comparison table:
//
//	rtrsim -policy lru,locallfd:1,lfd -rus 4-10 -parallel 8
//
// With -store DIR (or RTR_STORE set), scenario results are persisted
// keyed by canonical config hash and re-runs with overlapping grids are
// served from disk; the hit/miss digest goes to stderr so reports stay
// byte-identical. -store-gc reclaims entries written under an older
// schema version; -no-store disables the store even when RTR_STORE is
// set. Trace-producing runs (-gantt/-svg/-trace) bypass the store.
//
// A grid too large for one machine splits across hosts sharing a store.
// With -coord every host runs the same command and a self-healing pool
// leases the shards; the merge can run anywhere, even first, with
// -watch:
//
//	every host:  rtrsim -policy lru,lfd -rus 4-10 -store /shared -coord /shared/coord -coord-shards 8
//	any host:    rtrsim -policy lru,lfd -rus 4-10 -store /shared -coord /shared/coord -merge-report -watch
//
// Both locators also take an rtrserved campaign URL
// (http://host:8080/c/ID; -auth-token/-http-timeout tune the wire
// client), so the same pool can span hosts with no shared filesystem.
//
// Workers claim shards, heartbeat while populating the store, and
// re-lease any shard whose worker stops heartbeating for -lease-ttl
// (idempotent: the store dedupes by config hash). -coord-workers runs
// several claim loops in one process; -coord-status prints the pool
// state. The watch merge prints each table row the moment its scenario
// is stored, reports per-shard progress on stderr, blocks until the
// pool drains, and errors — using the same lease TTL — if the pool's
// workers die; without -watch, -merge-report next to -coord refuses a
// pool that has not drained. Manual -shard i/N remains for fixed
// matrices: it simulates only the scenarios whose spec index ≡ i (mod N)
// into the store and prints no table (the per-shard digest — scenarios
// ran, skipped by other shards, store hits/misses — goes to stderr);
// -merge-report renders the full comparison table purely from the store,
// failing on any scenario a shard never populated.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/profiling"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	var (
		wl       = flag.String("workload", "multimedia", "workload: fig2, fig3, or multimedia")
		apps     = flag.Int("apps", 500, "sequence length for the multimedia workload")
		seed     = flag.Int64("seed", 2011, "sequence seed for the multimedia workload")
		pol      = flag.String("policy", "locallfd:1", "replacement policy (lru, mru, fifo, random[:seed], lfd, locallfd:<w>); a comma list sweeps them")
		rus      = flag.String("rus", "4", "number of reconfigurable units; a range (\"4-10\") or list (\"4,6\") sweeps them")
		latency  = flag.Float64("latency", 4, "reconfiguration latency in ms")
		skip     = flag.Bool("skip", false, "enable skip events (hybrid design-time/run-time technique)")
		prefetch = flag.Bool("prefetch", false, "enable the cross-graph prefetch extension")
		gantt    = flag.Bool("gantt", false, "print the schedule as an ASCII Gantt chart (single run only)")
		tick     = flag.Float64("tick", 0, "Gantt: ms per column (0 = auto)")
		svgOut   = flag.String("svg", "", "write the schedule as SVG to this file (single run only)")
		traceOut = flag.String("trace", "", "write the execution trace as JSON to this file (single run only)")

		cf = cliflags.Register(flag.CommandLine)

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of this run to the file (inspect with go tool pprof; see EXPERIMENTS.md)")
		memProfile = flag.String("memprofile", "", "write a heap profile (live memory after GC) to the file at exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "rtrsim:", err)
		}
	}()

	setup, err := cf.Resolve()
	if err != nil {
		fatal(err)
	}
	store := setup.Store
	// Design-time artifact tier: with a store attached, mobility tables
	// persist next to the results and warm runs load them instead of
	// recomputing. Counters start from zero for this run's digest.
	mobility.ResetStats()
	if store != nil {
		artifact.Install(store)
	}
	if setup.StoreGC {
		line, err := resultstore.RunGC(store)
		if err != nil {
			fatal(err)
		}
		fmt.Println(line)
		return
	}
	if setup.CoordStatus {
		report, err := setup.StatusReport()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		return
	}

	units, err := sweep.ParseRUs(*rus)
	if err != nil {
		fatal(err)
	}
	policies, err := sweep.ParsePolicies(*pol, *skip)
	if err != nil {
		fatal(err)
	}
	seq, err := buildWorkload(*wl, *apps, *seed)
	if err != nil {
		fatal(err)
	}
	sharded := setup.HasShard || setup.Merge || setup.Coord != nil

	if len(units) == 1 && len(policies) == 1 && !sharded {
		runSingle(*wl, seq, singleOptions{
			spec: policies[0], rus: units[0], latency: simtime.FromMs(*latency),
			skip: *skip, prefetch: *prefetch, retries: setup.Retries,
			gantt: *gantt, tick: *tick, svgOut: *svgOut, traceOut: *traceOut,
		}, store)
	} else {
		if *gantt || *svgOut != "" || *traceOut != "" {
			if sharded {
				fatal(fmt.Errorf("-gantt/-svg/-trace need a single live scenario, not a sharded sweep"))
			}
			fatal(fmt.Errorf("-gantt/-svg/-trace need a single scenario; got %d policies × %d unit counts",
				len(policies), len(units)))
		}
		runSweep(*wl, seq, sweepOptions{
			units: units, policies: policies, latency: simtime.FromMs(*latency),
			prefetch: *prefetch,
		}, setup)
	}
	if store != nil {
		fmt.Fprintln(os.Stderr, store.SummaryLine())
	}
	if line := mobility.DigestLine(); line != "" {
		fmt.Fprintln(os.Stderr, line)
	}
}

type singleOptions struct {
	spec           sweep.PolicySpec
	rus            int
	latency        simtime.Time
	skip, prefetch bool
	retries        int
	gantt          bool
	tick           float64
	svgOut         string
	traceOut       string
}

// runSingle is the classic one-scenario path with the full metric report
// and the optional schedule views. With a store attached (and no schedule
// view requested, since traces are not serialized) the scenario runs
// through the store-backed sweep executor instead, so repeated single
// runs are served from disk too.
func runSingle(wl string, seq []*taskgraph.Graph, o singleOptions, store *resultstore.Store) {
	needTrace := o.gantt || o.svgOut != "" || o.traceOut != ""
	var res *core.Result
	if store != nil && !needTrace {
		ps := o.spec
		ps.CrossGraphPrefetch = o.prefetch
		rs, err := sweep.Executor{Store: store, MaxScenarioRetries: o.retries}.Run(sweep.Spec{
			Workloads: []sweep.Workload{{Seq: seq}},
			RUs:       []int{o.rus},
			Latencies: []simtime.Time{o.latency},
			Policies:  []sweep.PolicySpec{ps},
		})
		if err != nil {
			fatal(err)
		}
		r := rs.Results[0]
		res = &core.Result{Run: r.Run, Ideal: r.Ideal, Summary: r.Summary}
	} else {
		pol, err := o.spec.New()
		if err != nil {
			fatal(err)
		}
		r, err := core.Evaluate(core.Config{
			RUs:                o.rus,
			Latency:            o.latency,
			Policy:             pol,
			SkipEvents:         o.skip,
			CrossGraphPrefetch: o.prefetch,
			RecordTrace:        needTrace,
		}, seq...)
		if err != nil {
			fatal(err)
		}
		res = r
	}

	s := res.Summary
	fmt.Printf("workload        %s (%d applications, %d task executions)\n", wl, len(seq), s.Executed)
	fmt.Printf("system          %d RUs, latency %v\n", s.RUs, s.Latency)
	// The spec's display name already carries the skip suffix, and both
	// execution paths (core and store-backed sweep) report the same run,
	// so the label is path-independent.
	fmt.Printf("policy          %s\n", o.spec.Name)
	fmt.Printf("reuse           %d/%d = %.2f%%\n", s.Reused, s.Executed, s.ReuseRate())
	fmt.Printf("makespan        %v (ideal %v)\n", s.Makespan, s.IdealMakespan)
	fmt.Printf("overhead        %v (%.2f%% of the original %v)\n",
		s.Overhead(), s.RemainingOverheadPct(), s.OriginalOverhead())
	fmt.Printf("loads           %d (skips taken: %d, preloads: %d)\n",
		s.Loads, res.Run.Skips, res.Run.Preloads)
	if d, err := metrics.Delays(res.Run, res.Ideal); err == nil && d.Count > 0 {
		fmt.Printf("per-app delay   mean %v, p50 %v, p95 %v, max %v\n", d.Mean, d.P50, d.P95, d.Max)
	}
	if o.gantt {
		fmt.Println()
		fmt.Print(res.Run.Trace.Gantt(trace.GanttOptions{TickMs: o.tick}))
	}
	if o.svgOut != "" {
		if err := os.WriteFile(o.svgOut, []byte(res.Run.Trace.SVG()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule SVG    %s\n", o.svgOut)
	}
	if o.traceOut != "" {
		data, err := json.MarshalIndent(res.Run.Trace, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(o.traceOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("trace JSON      %s\n", o.traceOut)
	}
}

type sweepOptions struct {
	units    []int
	policies []sweep.PolicySpec
	latency  simtime.Time
	prefetch bool
}

// runSweep executes the policies × unit-counts grid on the streaming
// executor and prints one comparison row per scenario, in spec order,
// the moment the scenario lands — the sweep holds O(workers) raw runs
// and the renderer O(1) rows however many scenarios the flags expand to.
// In a watch-mode merge the rows appear as the coordinator pool stores
// their scenarios.
func runSweep(wl string, seq []*taskgraph.Graph, o sweepOptions, setup campaign.Setup) {
	store := setup.Store
	if o.prefetch {
		for i := range o.policies {
			o.policies[i].CrossGraphPrefetch = true
		}
	}
	spec := sweep.Spec{
		Workloads: []sweep.Workload{{Seq: seq}},
		RUs:       o.units,
		Latencies: []simtime.Time{o.latency},
		Policies:  o.policies,
	}
	var storeWait *sweep.StoreWait
	var poolWatch *coord.PoolWatch
	out := io.Writer(os.Stdout)
	if setup.Coord != nil {
		// A pool populate (or a merge against one) is only useful if the
		// grid can be persisted — an uncacheable spec would simulate
		// every slice and store nothing, failing only at merge time.
		if err := spec.Cacheable(); err != nil {
			fatal(fmt.Errorf("-coord: %w", err))
		}
		fingerprint := sweepFingerprint(wl, &spec)
		cfg := setup.Coord.Config(fingerprint)
		cks := coord.NewCheckpointStore(setup.Coord.Backend)
		if !setup.Merge {
			c, err := coord.Open(cfg)
			if errors.Is(err, coord.ErrUninitialised) {
				fatal(fmt.Errorf("%w (pass -coord-shards N to initialise the pool)", err))
			}
			if err != nil {
				fatal(err)
			}
			stats, err := c.RunWorkers(setup.Coord.Workers, func(r coord.ShardRun) error {
				sp := spec
				sp.Shard = sweep.Shard{Index: r.Shard, Count: r.Count}
				// Checkpointed populate: a re-leased shard resumes past the
				// spec indices a dead worker's attempt already stored.
				ex := sweep.Executor{Workers: setup.Parallel, Store: store, MaxScenarioRetries: setup.Retries}
				if _, err := ex.CollectResumable(sp, sweep.Discard, cks,
					fmt.Sprintf("shard-%04d/sweep", r.Shard), fingerprint); err != nil {
					return err
				}
				n := sp.Size()
				fmt.Fprintf(os.Stderr, "coord worker %s: shard %s: ran %d of %d scenarios (%d skipped by other shards) (attempt %d)\n",
					c.Owner(), sp.Shard, sp.Shard.SizeOf(n), n, n-sp.Shard.SizeOf(n), r.Attempt)
				return nil
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, stats.Summary(c.Shards()))
			return
		}
		// Coordinator-aware merge: refuse a pool that has not drained, or
		// — with -watch — render while it drains and error if it dies.
		_, pw, poll, err := coord.MergeGate(cfg, setup.Watch, os.Stderr)
		if err != nil {
			fatal(err)
		}
		if pw != nil {
			poolWatch = pw
			defer poolWatch.Stop()
			storeWait = &sweep.StoreWait{Poll: poll, Done: poolWatch.Done}
			// Checkpointed render: a killed watch merge left the byte
			// offset it had printed; the resumed render re-renders from the
			// store and suppresses exactly that prefix, so partial output +
			// resumed output reassemble the plain table byte for byte.
			if resume := campaign.LoadMergeOffset(cks, fingerprint); resume > 0 {
				fmt.Fprintf(os.Stderr, "merge checkpoint: resuming at byte offset %d\n", resume)
				out = &campaign.CheckpointedWriter{W: os.Stdout, Resume: resume,
					Save: func(total int64) { campaign.SaveMergeOffset(cks, fingerprint, total) }}
			} else {
				out = &campaign.CheckpointedWriter{W: os.Stdout,
					Save: func(total int64) { campaign.SaveMergeOffset(cks, fingerprint, total) }}
			}
			defer campaign.SaveMergeOffset(cks, fingerprint, 0)
		}
	}
	if setup.HasShard {
		spec.Shard = setup.Shard
		ex := sweep.Executor{Workers: setup.Parallel, Store: store, MaxScenarioRetries: setup.Retries}
		if err := ex.Collect(spec, sweep.Discard); err != nil {
			fatal(err)
		}
		n := spec.Size()
		fmt.Fprintf(os.Stderr, "shard %s: ran %d of %d scenarios (%d skipped by other shards)\n",
			setup.Shard, setup.Shard.SizeOf(n), n, n-setup.Shard.SizeOf(n))
		return
	}
	ex := sweep.Executor{Workers: setup.Parallel, Store: store, RequireStored: setup.Merge,
		StoreWait: storeWait, MaxScenarioRetries: setup.Retries}
	if err := campaign.RenderSweepTable(wl, len(seq), spec, ex, out); err != nil {
		fatal(err)
	}
	if poolWatch != nil {
		// -watch blocks until the pool drains, not merely until the table
		// is complete (the last done records can trail the store writes).
		if _, err := poolWatch.Wait(); err != nil {
			fatal(err)
		}
	}
}

// sweepFingerprint identifies the exact grid a coordinator pool tiles:
// the canonical config hashes of every scenario the spec expands to.
// Hosts whose flags expand to a different grid are refused at Open
// instead of corrupting the pool's store coverage.
func sweepFingerprint(wl string, spec *sweep.Spec) string {
	keys, err := spec.ScenarioKeys()
	if err != nil {
		fatal(err)
	}
	h := resultstore.NewHash()
	h.String("cli", "rtrsim")
	h.String("workload", wl)
	for _, k := range keys {
		h.String("scenario", k)
	}
	return h.Sum()
}

// buildWorkload constructs the -workload sequence (shared with the
// rtrserved renderer through internal/campaign).
func buildWorkload(name string, apps int, seed int64) ([]*taskgraph.Graph, error) {
	return campaign.BuildWorkload(name, apps, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrsim:", err)
	os.Exit(1)
}
