// Command rtrsim simulates a reconfigurable multitasking system executing
// a workload under a chosen replacement policy and reports the paper's
// metrics (reuse rate, reconfiguration overhead, remaining-overhead
// percentage), optionally with a schedule view.
//
//	rtrsim -workload fig2 -policy lfd -gantt
//	rtrsim -workload multimedia -apps 200 -policy locallfd:2 -skip -rus 4
//	rtrsim -workload fig3 -policy locallfd:1 -skip -gantt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dynlist"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "multimedia", "workload: fig2, fig3, or multimedia")
		apps     = flag.Int("apps", 500, "sequence length for the multimedia workload")
		seed     = flag.Int64("seed", 2011, "sequence seed for the multimedia workload")
		pol      = flag.String("policy", "locallfd:1", "replacement policy (lru, mru, fifo, random[:seed], lfd, locallfd:<w>)")
		rus      = flag.Int("rus", 4, "number of reconfigurable units")
		latency  = flag.Float64("latency", 4, "reconfiguration latency in ms")
		skip     = flag.Bool("skip", false, "enable skip events (hybrid design-time/run-time technique)")
		prefetch = flag.Bool("prefetch", false, "enable the cross-graph prefetch extension")
		gantt    = flag.Bool("gantt", false, "print the schedule as an ASCII Gantt chart")
		tick     = flag.Float64("tick", 0, "Gantt: ms per column (0 = auto)")
		svgOut   = flag.String("svg", "", "write the schedule as SVG to this file")
		traceOut = flag.String("trace", "", "write the execution trace as JSON to this file")
	)
	flag.Parse()

	seq, err := buildWorkload(*wl, *apps, *seed)
	if err != nil {
		fatal(err)
	}
	needTrace := *gantt || *svgOut != "" || *traceOut != ""
	res, err := core.Evaluate(core.Config{
		RUs:                *rus,
		Latency:            simtime.FromMs(*latency),
		Policy:             *pol,
		SkipEvents:         *skip,
		CrossGraphPrefetch: *prefetch,
		RecordTrace:        needTrace,
	}, seq...)
	if err != nil {
		fatal(err)
	}

	s := res.Summary
	fmt.Printf("workload        %s (%d applications, %d task executions)\n", *wl, len(seq), s.Executed)
	fmt.Printf("system          %d RUs, latency %v\n", s.RUs, s.Latency)
	name := s.PolicyName
	if *skip {
		name += " + Skip Events"
	}
	fmt.Printf("policy          %s\n", name)
	fmt.Printf("reuse           %d/%d = %.2f%%\n", s.Reused, s.Executed, s.ReuseRate())
	fmt.Printf("makespan        %v (ideal %v)\n", s.Makespan, s.IdealMakespan)
	fmt.Printf("overhead        %v (%.2f%% of the original %v)\n",
		s.Overhead(), s.RemainingOverheadPct(), s.OriginalOverhead())
	fmt.Printf("loads           %d (skips taken: %d, preloads: %d)\n",
		s.Loads, res.Run.Skips, res.Run.Preloads)
	if d, err := metrics.Delays(res.Run, res.Ideal); err == nil && d.Count > 0 {
		fmt.Printf("per-app delay   mean %v, p50 %v, p95 %v, max %v\n", d.Mean, d.P50, d.P95, d.Max)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(res.Run.Trace.Gantt(trace.GanttOptions{TickMs: *tick}))
	}
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(res.Run.Trace.SVG()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule SVG    %s\n", *svgOut)
	}
	if *traceOut != "" {
		data, err := json.MarshalIndent(res.Run.Trace, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("trace JSON      %s\n", *traceOut)
	}
}

func buildWorkload(name string, apps int, seed int64) ([]*taskgraph.Graph, error) {
	switch name {
	case "fig2":
		return workload.Fig2Sequence(), nil
	case "fig3":
		return workload.Fig3Sequence(), nil
	case "multimedia":
		feed, err := dynlist.RandomSequence(workload.Multimedia(), apps, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		items := feed.Remaining()
		seq := make([]*taskgraph.Graph, len(items))
		for i, it := range items {
			seq[i] = it.Graph
		}
		return seq, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want fig2, fig3 or multimedia)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrsim:", err)
	os.Exit(1)
}
