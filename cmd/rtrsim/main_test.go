package main

import "testing"

func TestBuildWorkload(t *testing.T) {
	fig2, err := buildWorkload("fig2", 0, 0)
	if err != nil || len(fig2) != 5 {
		t.Errorf("fig2: %d graphs, err %v", len(fig2), err)
	}
	fig3, err := buildWorkload("fig3", 0, 0)
	if err != nil || len(fig3) != 3 {
		t.Errorf("fig3: %d graphs, err %v", len(fig3), err)
	}
	mm, err := buildWorkload("multimedia", 25, 1)
	if err != nil || len(mm) != 25 {
		t.Errorf("multimedia: %d graphs, err %v", len(mm), err)
	}
	// Determinism by seed.
	mm2, err := buildWorkload("multimedia", 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mm {
		if mm[i].Name() != mm2[i].Name() {
			t.Errorf("seeded workload diverged at %d", i)
		}
	}
	if _, err := buildWorkload("nope", 1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}
