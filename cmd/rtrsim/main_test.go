package main

import (
	"testing"

	"repro/internal/resultstore"
)

func TestStoreFlagResolution(t *testing.T) {
	if s, err := resultstore.OpenIfSet("", false); err != nil || s != nil {
		t.Errorf("empty dir: store %v, err %v", s, err)
	}
	if s, err := resultstore.OpenIfSet(t.TempDir(), true); err != nil || s != nil {
		t.Errorf("-no-store: store %v, err %v", s, err)
	}
	s, err := resultstore.OpenIfSet(t.TempDir(), false)
	if err != nil || s == nil {
		t.Fatalf("valid dir: store %v, err %v", s, err)
	}
	if hits, misses, puts := s.Stats(); hits+misses+puts != 0 {
		t.Error("fresh store has non-zero stats")
	}
	if _, err := resultstore.RunGC(nil); err == nil {
		t.Error("-store-gc without a store accepted")
	}
	line, err := resultstore.RunGC(s)
	if err != nil {
		t.Fatal(err)
	}
	if line != "store gc: removed 0 stale entries, kept 0 ("+s.Dir()+")" {
		t.Errorf("gc line %q", line)
	}
}

func TestBuildWorkload(t *testing.T) {
	fig2, err := buildWorkload("fig2", 0, 0)
	if err != nil || len(fig2) != 5 {
		t.Errorf("fig2: %d graphs, err %v", len(fig2), err)
	}
	fig3, err := buildWorkload("fig3", 0, 0)
	if err != nil || len(fig3) != 3 {
		t.Errorf("fig3: %d graphs, err %v", len(fig3), err)
	}
	mm, err := buildWorkload("multimedia", 25, 1)
	if err != nil || len(mm) != 25 {
		t.Errorf("multimedia: %d graphs, err %v", len(mm), err)
	}
	// Determinism by seed.
	mm2, err := buildWorkload("multimedia", 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mm {
		if mm[i].Name() != mm2[i].Name() {
			t.Errorf("seeded workload diverged at %d", i)
		}
	}
	if _, err := buildWorkload("nope", 1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}
